// tcppr_sim — scenario driver CLI.
//
// Runs any of the paper's topologies with any sender variant and prints
// per-flow results plus the fairness metrics; optionally writes an
// ns-2-style packet trace. Everything the figure benches do, one run at a
// time, scriptable.
//
//   tcppr_sim --topology dumbbell --pr-flows 4 --sack-flows 4
//   tcppr_sim --topology multipath --variant inc-by-n --epsilon 1
//   tcppr_sim --topology parking-lot --duration 100 --trace run.tr
//   tcppr_sim --validate --topology dumbbell         # run under the checker
//   tcppr_sim --fuzz 100 --jobs 4                    # fuzz seeds 1..100
//   tcppr_sim --fuzz-seed 42                         # replay one fuzz case
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "harness/experiment.hpp"
#include "harness/parallel_run.hpp"
#include "obs/registry.hpp"
#include "obs/series.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "validate/fuzzer.hpp"
#include "validate/invariants.hpp"
#include "workload/workload.hpp"

namespace {

using namespace tcppr;
using harness::TcpVariant;

struct Args {
  std::string topology = "dumbbell";
  std::string variant = "tcp-pr";
  std::string queue = "heap";
  double epsilon = 0;
  int pr_flows = 2;
  int sack_flows = 2;
  int flows = 256;           // many-flows / fan-dumbbell topologies
  int fan_width = 8;         // fan-dumbbell relays per side
  double pr_fraction = 0.5;  // many-flows variant mix
  double duration_s = 60;
  double measured_s = 30;
  double bottleneck_mbps = 15;
  double link_delay_ms = -1;  // topology default
  double alpha = 0.995;
  double beta = 3.0;
  std::uint64_t seed = 1;
  std::string trace_path;
  std::string ts_out;
  double ts_interval_s = 0.1;
  bool validate = false;
  bool telemetry = false;  // per-link reordering taps + summary table
  std::string workload;       // "", poisson, web, onoff, million
  double arrival_rate = 100;  // dynamic-flow arrivals per second
  int max_concurrent = 0;     // workload cap override (0 = kind default)
  int id_slots = 0;           // workload id-space override (0 = default)
  // Exit nonzero unless the workload's peak concurrency reaches this.
  std::size_t expect_concurrent = 0;
  bool no_batch = false;  // run the unbatched one-event-per-op engine
  int par = 0;  // 0 = sequential, >= 1 = parallel harness with N LPs
  // Parallel engine mode; empty = conservative (and "as sampled" for fuzz
  // runs, where the mode is a sampled dimension).
  std::string engine;
  int fuzz_count = 0;
  std::optional<std::uint64_t> fuzz_seed;
  int jobs = 1;
  std::string fuzz_artifacts;
};

std::optional<sim::SchedulerBackend> parse_backend(const std::string& name) {
  if (name == "heap") return sim::SchedulerBackend::kBinaryHeap;
  if (name == "calendar") return sim::SchedulerBackend::kCalendarQueue;
  if (name == "wheel") return sim::SchedulerBackend::kTimingWheel;
  return std::nullopt;
}

// Engine mode encoding shared with validate::FuzzCase::engine_mode:
// 0 conservative, 1 adaptive, 2 optimistic, 3 both.
std::optional<int> parse_engine(const std::string& name) {
  if (name.empty() || name == "conservative") return 0;
  if (name == "adaptive") return 1;
  if (name == "optimistic") return 2;
  if (name == "adaptive+optimistic" || name == "optimistic+adaptive") {
    return 3;
  }
  return std::nullopt;
}

const char* engine_name(int mode) {
  static const char* names[] = {"conservative", "adaptive", "optimistic",
                                "adaptive+optimistic"};
  return names[mode & 3];
}

std::optional<TcpVariant> parse_variant(const std::string& name) {
  for (const TcpVariant v : harness::all_variants()) {
    if (name == to_string(v)) return v;
  }
  return std::nullopt;
}

std::optional<workload::WorkloadKind> parse_workload(const std::string& name) {
  if (name == "poisson") return workload::WorkloadKind::kPoisson;
  if (name == "web") return workload::WorkloadKind::kWeb;
  if (name == "onoff") return workload::WorkloadKind::kOnOff;
  return std::nullopt;
}

void usage() {
  std::printf(
      "tcppr_sim — run one simulation scenario\n\n"
      "  --topology dumbbell|parking-lot|multipath|many-flows|\n"
      "             many-flows-graph|fan-dumbbell     (default dumbbell)\n"
      "  --variant <name>      sender for multipath runs (default tcp-pr)\n"
      "                        names: tcp-pr sack reno newreno tahoe td-fr\n"
      "                        dsack-nm inc-by-1 inc-by-n ewma eifel tcp-door\n"
      "  --queue heap|calendar|wheel  scheduler backend (default heap)\n"
      "  --epsilon <e>         multipath spread parameter (default 0)\n"
      "  --pr-flows <n>        dumbbell/parking-lot TCP-PR flows (default 2)\n"
      "  --sack-flows <n>      dumbbell/parking-lot TCP-SACK flows (default 2)\n"
      "  --flows <n>           many-flows flow count 1..4096, or the\n"
      "                        fan-dumbbell concurrency target 1..2^20\n"
      "                        (default 256)\n"
      "  --fan-width <n>       fan-dumbbell relay nodes per side (default 8)\n"
      "  --pr-fraction <f>     many-flows TCP-PR share (default 0.5)\n"
      "  --duration <s>        total simulated seconds (default 60)\n"
      "  --measured <s>        trailing measurement window (default 30)\n"
      "  --bottleneck <mbps>   dumbbell bottleneck (default 15)\n"
      "  --delay <ms>          link delay override\n"
      "  --alpha <a> --beta <b>  TCP-PR parameters (default 0.995 / 3)\n"
      "  --seed <n>            RNG seed (default 1)\n"
      "  --trace <file>        write an ns-2-style packet trace\n"
      "  --ts-out <file>       write flow/queue time series (.ndjson for\n"
      "                        NDJSON, anything else for CSV)\n"
      "  --ts-interval <s>     queue sampling interval (default 0.1)\n"
      "  --validate            run under the invariant checker; nonzero\n"
      "                        exit and a report on any violation\n"
      "  --telemetry           attach a constant-memory reordering tap to\n"
      "                        every link and print the summary table;\n"
      "                        with --validate the taps carry an exact\n"
      "                        baseline checked against the sketches\n"
      "  --workload poisson|web|onoff|million  overlay dynamic flow churn\n"
      "                        between the scenario's src/dst hosts: flows\n"
      "                        arrive, transfer and depart (src/workload\n"
      "                        engine). `million` is the tuned steady-state\n"
      "                        preset whose on/off population pins\n"
      "                        concurrency at --flows (pair with\n"
      "                        --topology fan-dumbbell)\n"
      "  --arrival-rate <r>    workload mean arrivals per second\n"
      "                        (default 100; on/off kind ignores it)\n"
      "  --max-concurrent <n>  workload concurrency cap override\n"
      "  --id-slots <n>        workload flow-id slot table size override\n"
      "  --expect-concurrent <n>  exit nonzero unless the workload's peak\n"
      "                        concurrency reached n (scale gating)\n"
      "  --no-batch            disable the batched hot path (one scheduler\n"
      "                        event per packet op; byte-identical results,\n"
      "                        the perf-comparison baseline). Also applies\n"
      "                        to --fuzz-seed replays\n"
      "  --par <n>             run on n parallel scheduler shards (LPs);\n"
      "                        byte-identical to the sequential run. Also\n"
      "                        applies to --fuzz and --fuzz-seed runs\n"
      "  --engine <mode>       parallel engine mode with --par:\n"
      "                        conservative|adaptive|optimistic|\n"
      "                        adaptive+optimistic (default conservative;\n"
      "                        all modes are byte-identical). For --fuzz\n"
      "                        and --fuzz-seed it overrides the sampled\n"
      "                        engine-mode dimension\n"
      "  --fuzz <n>            fuzz campaign over seeds [--seed, --seed+n)\n"
      "  --fuzz-seed <n>       replay one fuzz case under the checker\n"
      "  --fuzz-artifacts <dir>  write per-seed reproducer files for\n"
      "                        failing fuzz seeds into <dir>\n"
      "  --jobs <j>            fuzz campaign worker threads (default 1)\n");
}

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--help" || flag == "-h") {
      usage();
      std::exit(0);
    } else if (flag == "--topology") {
      args.topology = next();
    } else if (flag == "--variant") {
      args.variant = next();
    } else if (flag == "--queue") {
      args.queue = next();
    } else if (flag == "--flows") {
      args.flows = std::atoi(next());
    } else if (flag == "--fan-width") {
      args.fan_width = std::atoi(next());
    } else if (flag == "--pr-fraction") {
      args.pr_fraction = std::atof(next());
    } else if (flag == "--epsilon") {
      args.epsilon = std::atof(next());
    } else if (flag == "--pr-flows") {
      args.pr_flows = std::atoi(next());
    } else if (flag == "--sack-flows") {
      args.sack_flows = std::atoi(next());
    } else if (flag == "--duration") {
      args.duration_s = std::atof(next());
    } else if (flag == "--measured") {
      args.measured_s = std::atof(next());
    } else if (flag == "--bottleneck") {
      args.bottleneck_mbps = std::atof(next());
    } else if (flag == "--delay") {
      args.link_delay_ms = std::atof(next());
    } else if (flag == "--alpha") {
      args.alpha = std::atof(next());
    } else if (flag == "--beta") {
      args.beta = std::atof(next());
    } else if (flag == "--seed") {
      args.seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--trace") {
      args.trace_path = next();
    } else if (flag == "--ts-out") {
      args.ts_out = next();
    } else if (flag == "--ts-interval") {
      args.ts_interval_s = std::atof(next());
    } else if (flag == "--validate") {
      args.validate = true;
    } else if (flag == "--telemetry") {
      args.telemetry = true;
    } else if (flag == "--workload") {
      args.workload = next();
    } else if (flag == "--arrival-rate") {
      args.arrival_rate = std::atof(next());
    } else if (flag == "--max-concurrent") {
      args.max_concurrent = std::atoi(next());
    } else if (flag == "--id-slots") {
      args.id_slots = std::atoi(next());
    } else if (flag == "--expect-concurrent") {
      args.expect_concurrent =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (flag == "--no-batch") {
      args.no_batch = true;
    } else if (flag == "--par") {
      args.par = std::atoi(next());
    } else if (flag == "--engine") {
      args.engine = next();
    } else if (flag == "--fuzz") {
      args.fuzz_count = std::atoi(next());
    } else if (flag == "--fuzz-seed") {
      args.fuzz_seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--fuzz-artifacts") {
      args.fuzz_artifacts = next();
    } else if (flag == "--jobs") {
      args.jobs = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      return false;
    }
  }
  args.measured_s = std::min(args.measured_s, args.duration_s);
  return true;
}

std::unique_ptr<harness::Scenario> build(const Args& args,
                                         sim::SchedulerBackend backend) {
  core::TcpPrConfig pr;
  pr.alpha = args.alpha;
  pr.beta = args.beta;
  if (args.topology == "many-flows" || args.topology == "many-flows-graph") {
    harness::ManyFlowsConfig config;
    config.topology = args.topology == "many-flows-graph"
                          ? harness::ManyFlowsConfig::Topology::kRandomGraph
                          : harness::ManyFlowsConfig::Topology::kDumbbell;
    if (args.flows < 1 || args.flows > harness::ManyFlowsConfig::kMaxFlows) {
      std::fprintf(stderr, "--flows must be in 1..%d\n",
                   harness::ManyFlowsConfig::kMaxFlows);
      return nullptr;
    }
    config.flows = args.flows;
    config.pr_fraction = args.pr_fraction;
    if (args.link_delay_ms > 0) {
      config.bottleneck_delay = sim::Duration::millis(args.link_delay_ms);
      config.graph_delay = sim::Duration::millis(args.link_delay_ms);
    }
    config.pr = pr;
    config.seed = args.seed;
    config.backend = backend;
    return harness::make_many_flows(config);
  }
  if (args.topology == "fan-dumbbell") {
    if (args.flows < 1 || args.flows > harness::FanDumbbellConfig::kMaxFlows) {
      std::fprintf(stderr, "--flows must be in 1..%d\n",
                   harness::FanDumbbellConfig::kMaxFlows);
      return nullptr;
    }
    harness::FanDumbbellConfig config = harness::million_fan_config(args.flows);
    if (args.fan_width < 1) {
      std::fprintf(stderr, "--fan-width must be >= 1\n");
      return nullptr;
    }
    config.fan_width = args.fan_width;
    if (args.link_delay_ms > 0) {
      config.bottleneck_delay = sim::Duration::millis(args.link_delay_ms);
    }
    config.pr = pr;
    config.seed = args.seed;
    config.backend = backend;
    return harness::make_fan_dumbbell(config);
  }
  if (args.topology == "dumbbell") {
    harness::DumbbellConfig config;
    config.pr_flows = args.pr_flows;
    config.sack_flows = args.sack_flows;
    config.bottleneck_bw_bps = args.bottleneck_mbps * 1e6;
    if (args.link_delay_ms > 0) {
      config.bottleneck_delay = sim::Duration::millis(args.link_delay_ms);
    }
    config.pr = pr;
    config.seed = args.seed;
    config.backend = backend;
    return harness::make_dumbbell(config);
  }
  if (args.topology == "parking-lot") {
    harness::ParkingLotConfig config;
    config.pr_flows = args.pr_flows;
    config.sack_flows = args.sack_flows;
    if (args.link_delay_ms > 0) {
      config.chain_delay = sim::Duration::millis(args.link_delay_ms);
    }
    config.pr = pr;
    config.seed = args.seed;
    config.backend = backend;
    return harness::make_parking_lot(config);
  }
  if (args.topology == "multipath") {
    harness::MultipathConfig config;
    const auto variant = parse_variant(args.variant);
    if (!variant) {
      std::fprintf(stderr, "unknown variant %s\n", args.variant.c_str());
      return nullptr;
    }
    config.variant = *variant;
    config.epsilon = args.epsilon;
    if (args.link_delay_ms > 0) {
      config.link_delay = sim::Duration::millis(args.link_delay_ms);
    }
    config.pr = pr;
    config.seed = args.seed;
    config.backend = backend;
    return harness::make_multipath(config);
  }
  std::fprintf(stderr, "unknown topology %s\n", args.topology.c_str());
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 1;
  const auto backend = parse_backend(args.queue);
  if (!backend) {
    std::fprintf(stderr, "unknown queue backend %s (heap|calendar|wheel)\n",
                 args.queue.c_str());
    return 1;
  }

  const auto engine_mode = parse_engine(args.engine);
  if (!engine_mode) {
    std::fprintf(stderr,
                 "unknown engine mode %s "
                 "(conservative|adaptive|optimistic|adaptive+optimistic)\n",
                 args.engine.c_str());
    return 1;
  }

  if (args.fuzz_seed) {
    auto c = validate::sample_fuzz_case(*args.fuzz_seed);
    c.backend = *backend;
    c.par_lps = args.par;
    c.batching = !args.no_batch;
    if (!args.engine.empty()) c.engine_mode = *engine_mode;
    std::printf("fuzz seed %llu: %s\n",
                static_cast<unsigned long long>(*args.fuzz_seed),
                validate::describe(c).c_str());
    const auto r = validate::run_fuzz_case(c);
    std::printf("delivered=%llu hash=%016llx violations=%llu\n",
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.delivery_hash),
                static_cast<unsigned long long>(r.violations));
    if (!r.ok) {
      std::printf("first violation: %s\n", r.first_violation.c_str());
      const auto min = validate::minimize_fuzz_case(c);
      std::printf("minimized: %s\n", validate::describe(min).c_str());
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }
  if (args.fuzz_count > 0) {
    const int failures = validate::run_fuzz_campaign(
        args.seed, args.fuzz_count, args.jobs, /*quiet=*/false,
        args.fuzz_artifacts, *backend, args.par,
        args.engine.empty() ? -1 : *engine_mode);
    std::printf("fuzz: %d/%d seeds clean\n", args.fuzz_count - failures,
                args.fuzz_count);
    return failures == 0 ? 0 : 1;
  }

  net::set_hot_path_batching(!args.no_batch);
  auto scenario = build(args, *backend);
  net::set_hot_path_batching(true);
  if (!scenario) return 1;

  std::unique_ptr<trace::FileTrace> trace_file;
  if (!args.trace_path.empty()) {
    trace_file = std::make_unique<trace::FileTrace>(args.trace_path);
    if (!trace_file->ok()) {
      std::fprintf(stderr, "cannot open %s\n", args.trace_path.c_str());
      return 1;
    }
    scenario->network.add_trace_sink(trace_file.get());
  }

  obs::MetricRegistry registry;
  std::unique_ptr<obs::SeriesSink> series_sink;
  if (!args.ts_out.empty()) {
    const bool ndjson = args.ts_out.size() > 7 &&
                        args.ts_out.rfind(".ndjson") == args.ts_out.size() - 7;
    if (ndjson) {
      series_sink = std::make_unique<obs::NdjsonSink>(args.ts_out);
    } else {
      series_sink = std::make_unique<obs::CsvSeriesSink>(args.ts_out);
    }
    if (!series_sink->ok()) {
      std::fprintf(stderr, "cannot open %s\n", args.ts_out.c_str());
      return 1;
    }
    registry.add_sink(series_sink.get());
    if (args.par >= 1) {
      // Per-flow probes schedule on the build scheduler and stay
      // sequential-only; under --par the time-series output instead
      // carries the per-LP engine gauges published with the barrier
      // report after the run.
    } else {
      scenario->attach_observability(
          registry, sim::Duration::seconds(args.ts_interval_s));
    }
  }

  std::unique_ptr<validate::InvariantChecker> checker;
  if (args.validate) {
    checker = std::make_unique<validate::InvariantChecker>(*scenario);
  }
  // Reordering telemetry: one tap per link, attached before anything runs.
  // Pure observation — results (and delivery hashes) are byte-identical
  // with or without it. Under --validate the taps also carry the exact
  // per-flow baseline, and every checker sweep becomes a sketch-vs-exact
  // differential check. The baseline is O(flows) per link — at the
  // million-flow scale row it would dwarf the simulation itself, so past
  // 2^16 flows validation keeps the sketch bound checks and drops the
  // exact differential (the checker skips taps without a baseline).
  std::unique_ptr<telemetry::Telemetry> telemetry;
  if (args.telemetry) {
    telemetry::TelemetryConfig tc;
    tc.tap.exact_baseline = args.validate && args.flows <= (1 << 16);
    telemetry = std::make_unique<telemetry::Telemetry>(scenario->network, tc);
    if (checker) checker->set_telemetry(telemetry.get());
  }
  // Parallel harness: built after every component (flows, sinks, checker)
  // but before anything runs — its constructor adopts the scenario's
  // build-time events. Observability probes schedule on the build
  // scheduler and are not supported in parallel mode.
  std::unique_ptr<harness::ParallelSim> psim;
  if (args.par >= 1) {
    harness::ParallelRunConfig pc;
    pc.lps = args.par;
    pc.adaptive = *engine_mode == 1 || *engine_mode == 3;
    pc.optimistic = *engine_mode == 2 || *engine_mode == 3;
    psim = std::make_unique<harness::ParallelSim>(*scenario, pc);
    if (checker) psim->set_checker(checker.get());
  } else if (checker) {
    checker->start();
  }

  // Dynamic-churn overlay: created after the ParallelSim (like the
  // fuzzer's) so arrival/teardown events land on the shards owning the
  // src/dst hosts; destroyed before psim and the scenario (declaration
  // order below ensures it).
  std::unique_ptr<workload::WorkloadEngine> engine;
  if (!args.workload.empty()) {
    workload::WorkloadConfig wc;
    if (args.workload == "million") {
      // Steady-state concurrency pinned at --flows; sized for the
      // fan-dumbbell plant built above.
      wc = workload::million_workload_config(args.flows);
    } else {
      const auto kind = parse_workload(args.workload);
      if (!kind) {
        std::fprintf(stderr,
                     "unknown workload %s (poisson|web|onoff|million)\n",
                     args.workload.c_str());
        return 1;
      }
      wc.kind = *kind;
      wc.arrival_rate = args.arrival_rate;
    }
    if (args.max_concurrent > 0) wc.max_concurrent = args.max_concurrent;
    if (args.id_slots > 0) wc.id_slots = args.id_slots;
    wc.seed = args.seed ^ 0xC4u;
    engine = std::make_unique<workload::WorkloadEngine>(*scenario, wc,
                                                        psim.get());
    if (series_sink && !psim) {
      registry.set_aggregate_only(true);  // churn scale: no per-flow labels
      engine->set_metric_registry(registry);
    }
    if (telemetry && !psim) engine->set_telemetry(telemetry.get());
    engine->start();
  }

  harness::MeasurementWindow window;
  window.total = sim::Duration::seconds(args.duration_s);
  window.measured = sim::Duration::seconds(args.measured_s);
  const auto result = run_scenario(*scenario, window, psim.get());
  if (engine) engine->stop();
  if (checker) checker->finalize();

  std::printf("topology=%s queue=%s duration=%.0fs measured=%.0fs seed=%llu\n",
              args.topology.c_str(), args.queue.c_str(), args.duration_s,
              args.measured_s, static_cast<unsigned long long>(args.seed));
  if (psim) {
    std::printf("parallel: %d LPs (%d requested), engine=%s, %llu windows, "
                "%llu cross-LP packets\n",
                psim->lp_count(), args.par, engine_name(*engine_mode),
                static_cast<unsigned long long>(psim->windows()),
                static_cast<unsigned long long>(psim->exchanged()));
    if (*engine_mode != 0) {
      std::printf("  engine: %llu spec windows (%llu rolled back, "
                  "%llu LP rollbacks), %llu repartitions, W=%.0fus\n",
                  static_cast<unsigned long long>(psim->spec_windows()),
                  static_cast<unsigned long long>(psim->rollback_windows()),
                  static_cast<unsigned long long>(psim->rollbacks()),
                  static_cast<unsigned long long>(psim->repartitions()),
                  static_cast<double>(psim->speculation_w().as_nanos()) / 1e3);
    }
    // Per-LP barrier report: window utilization against the busiest LP,
    // cross-LP traffic sourced at each LP, and the optimism footprint.
    const auto reports = psim->lp_reports();
    std::printf("  %-4s %12s %6s %12s %10s %10s\n", "lp", "events", "util",
                "cross-LP", "rollbacks", "snap (B)");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto& r = reports[i];
      std::printf("  %-4zu %12llu %5.1f%% %12llu %10llu %10llu\n", i,
                  static_cast<unsigned long long>(r.events),
                  100.0 * r.utilization,
                  static_cast<unsigned long long>(r.cross_pushed),
                  static_cast<unsigned long long>(r.rollbacks),
                  static_cast<unsigned long long>(r.snapshot_bytes));
    }
    if (series_sink) {
      psim->publish_metrics(registry,
                            sim::TimePoint::from_seconds(args.duration_s));
    }
  }
  const auto norm = result.normalized();
  if (result.flows.size() <= 32) {
    std::printf("%-4s %-9s %12s %12s %8s %6s %6s %6s\n", "flow", "variant",
                "thr (kbps)", "goodput", "rtx", "spur", "to", "halv");
    for (std::size_t i = 0; i < result.flows.size(); ++i) {
      const auto& f = result.flows[i];
      std::printf("%-4d %-9s %12.0f %12.0f %8llu %6llu %6llu %6llu\n",
                  static_cast<int>(f.flow), to_string(f.variant),
                  f.throughput_bps / 1e3, f.goodput_bps / 1e3,
                  static_cast<unsigned long long>(f.sender.retransmissions),
                  static_cast<unsigned long long>(
                      f.sender.spurious_retransmits_detected),
                  static_cast<unsigned long long>(f.sender.timeouts),
                  static_cast<unsigned long long>(f.sender.cwnd_halvings));
    }
  } else {
    // Per-flow tables are unreadable at many-flows scale; print per-variant
    // aggregates instead.
    std::printf("%-9s %6s %14s %14s %10s %8s\n", "variant", "flows",
                "mean thr", "total thr", "rtx", "to");
    for (const TcpVariant v : harness::all_variants()) {
      double total_bps = 0;
      std::uint64_t rtx = 0, to = 0;
      int n = 0;
      for (const auto& f : result.flows) {
        if (f.variant != v) continue;
        ++n;
        total_bps += f.throughput_bps;
        rtx += f.sender.retransmissions;
        to += f.sender.timeouts;
      }
      if (n == 0) continue;
      std::printf("%-9s %6d %12.0f k %12.0f k %10llu %8llu\n", to_string(v), n,
                  total_bps / n / 1e3, total_bps / 1e3,
                  static_cast<unsigned long long>(rtx),
                  static_cast<unsigned long long>(to));
    }
  }
  std::printf("\nloss rate %.2f%%, %llu events processed\n",
              100.0 * result.loss_rate,
              static_cast<unsigned long long>(result.events));
  // Engine aggregates: events per delivered packet (the batched hot path
  // drives this below 1) plus the delivery-run length histogram.
  const auto snap = scenario->network.conservation();
  const double epp =
      snap.delivered_to_agent > 0
          ? static_cast<double>(result.events) /
                static_cast<double>(snap.delivered_to_agent)
          : 0.0;
  std::printf("engine: %s, %.3f events/packet",
              args.no_batch ? "unbatched" : "batched", epp);
  net::LinkPump::Stats pump_stats{};
  net::LinkPump::RunHistogram hist{};
  if (psim) {
    pump_stats = psim->pump_stats();
    hist = psim->pump_histogram();
  } else if (scenario->network.pump() != nullptr) {
    pump_stats = scenario->network.pump()->stats();
    hist = scenario->network.pump()->aggregate_histogram();
  }
  if (pump_stats.events > 0) {
    std::printf(", %llu pump ops in %llu carrier events (%.2f ops/event)",
                static_cast<unsigned long long>(pump_stats.ops),
                static_cast<unsigned long long>(pump_stats.events),
                static_cast<double>(pump_stats.ops) /
                    static_cast<double>(pump_stats.events));
  }
  std::printf("\n");
  if (pump_stats.delivery_runs > 0) {
    std::printf("delivery runs: mean %.2f, len histogram [",
                static_cast<double>(pump_stats.delivered_in_runs) /
                    static_cast<double>(pump_stats.delivery_runs));
    for (std::size_t i = 0; i < hist.size(); ++i) {
      std::printf("%s%llu", i == 0 ? "" : " ",
                  static_cast<unsigned long long>(hist[i]));
    }
    std::printf("] (log2 buckets: 1, 2-3, 4-7, ..., >=128)\n");
  }
  if (engine) {
    const auto ws = engine->stats();
    std::printf(
        "workload: %s at %g/s — arrivals=%llu completed=%llu rejected=%llu "
        "active=%zu peak=%zu\n",
        args.workload.c_str(), args.arrival_rate,
        static_cast<unsigned long long>(ws.arrivals),
        static_cast<unsigned long long>(ws.completed),
        static_cast<unsigned long long>(ws.rejected), ws.active,
        ws.peak_active);
    std::printf(
        "  receivers: created=%llu closed=%llu reaped=%llu resumed=%llu "
        "stray=%llu live=%zu\n",
        static_cast<unsigned long long>(ws.receivers_created),
        static_cast<unsigned long long>(ws.receivers_closed),
        static_cast<unsigned long long>(ws.receivers_reaped),
        static_cast<unsigned long long>(ws.receivers_resumed),
        static_cast<unsigned long long>(ws.stray_packets),
        engine->live_receivers());
    const auto rs = engine->reorder_stats();
    std::printf(
        "  mean completion %.3fs, slab %zu bytes over %zu slots, "
        "reordered %.2f%% of %llu arrivals\n",
        ws.mean_completion_s(), engine->slab_bytes(), engine->slots_in_use(),
        100.0 * rs.reordered_fraction(),
        static_cast<unsigned long long>(rs.total()));
  }
  if (telemetry) {
    std::printf("\n");
    telemetry->print_summary(stdout);
    if (series_sink) {
      telemetry->publish(registry,
                         sim::TimePoint::from_seconds(args.duration_s));
    }
  }
  if (result.flows.size() > 1) {
    std::printf("mean normalized: tcp-pr %.3f, sack %.3f; CoV %.3f / %.3f\n",
                result.mean_normalized(TcpVariant::kTcpPr),
                result.mean_normalized(TcpVariant::kSack),
                result.cov(TcpVariant::kTcpPr),
                result.cov(TcpVariant::kSack));
  }
  if (trace_file) {
    trace_file->flush();
    std::printf("trace written to %s\n", args.trace_path.c_str());
  }
  if (series_sink) {
    series_sink->flush();
    std::printf("time series written to %s (%llu samples)\n",
                args.ts_out.c_str(),
                static_cast<unsigned long long>(registry.samples_recorded()));
  }
  if (checker) {
    std::printf("validation: %llu sweeps, %llu violations\n",
                static_cast<unsigned long long>(checker->sweeps()),
                static_cast<unsigned long long>(checker->total_violations()));
    if (!checker->ok()) {
      std::fputs(checker->report().c_str(), stderr);
      return 1;
    }
  }
  if (args.expect_concurrent > 0) {
    if (engine == nullptr) {
      std::fprintf(stderr,
                   "--expect-concurrent requires a --workload overlay\n");
      return 1;
    }
    const std::size_t peak = engine->stats().peak_active;
    if (peak < args.expect_concurrent) {
      std::fprintf(stderr,
                   "FAIL: peak concurrency %zu below expected %zu\n", peak,
                   args.expect_concurrent);
      return 1;
    }
    std::printf("peak concurrency %zu >= expected %zu\n", peak,
                args.expect_concurrent);
  }
  return 0;
}
