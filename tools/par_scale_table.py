#!/usr/bin/env python3
"""Print the sequential-vs-parallel scaling table from a scale_flows run.

Reads google-benchmark JSON (or a BENCH_engine.json report) containing
BM_ScaleFlowsParallel rows and prints one line per flow count with the
wall time at each LP count and the speedup over the one-LP (canonical
stamped sequential) row. CI runs this after the bench job and uploads the
table next to the raw JSON.

Usage:
    ./build/bench/scale_flows --benchmark_filter=BM_ScaleFlowsParallel \
        --benchmark_format=json > par.json
    python3 tools/par_scale_table.py par.json
"""

import json
import re
import sys

ROW_RE = re.compile(r"^BM_ScaleFlowsParallel/flows:(\d+)/lps:(\d+)$")
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        raw = json.load(f)
    rows = {}  # {flows: {lps: ns}}
    if isinstance(raw.get("benchmarks"), dict):  # BENCH_engine.json report
        items = ((n, r.get("after_ns")) for n, r in raw["benchmarks"].items())
    else:  # raw google-benchmark JSON
        items = ((b.get("run_name", b["name"]),
                  b["real_time"] * TIME_UNIT_NS[b["time_unit"]])
                 for b in raw.get("benchmarks", [])
                 if not b.get("error_occurred"))
    for name, ns in items:
        m = ROW_RE.match(name)
        if not m or ns is None:
            continue
        rows.setdefault(int(m.group(1)), {})[int(m.group(2))] = float(ns)
    return rows


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    rows = load(sys.argv[1])
    if not rows:
        sys.exit("error: no BM_ScaleFlowsParallel rows found")
    lp_counts = sorted({lps for by_lps in rows.values() for lps in by_lps})
    header = "flows " + "".join(f"{f'lps={k}':>17}" for k in lp_counts)
    print(header)
    print("-" * len(header))
    for flows in sorted(rows):
        by_lps = rows[flows]
        base = by_lps.get(1)
        cells = []
        for k in lp_counts:
            ns = by_lps.get(k)
            if ns is None:
                cells.append(f"{'-':>17}")
            elif base and k > 1:
                cells.append(f"{ns / 1e6:9.1f}ms {base / ns:4.2f}x")
            else:
                cells.append(f"{ns / 1e6:15.1f}ms")
        print(f"{flows:<6}" + "".join(cells))


if __name__ == "__main__":
    main()
