#!/usr/bin/env python3
"""Benchmark regression gate: fail CI when the engine got slower.

Compares a current benchmark run against the committed baseline
(BENCH_engine.json at the repo root) and exits non-zero when any gated
benchmark regressed by more than the threshold (default 15%).

Gated benchmarks — the engine cost centers this repo optimizes:
    BM_SchedulerScheduleRun/*   event queue push/pop throughput
    BM_SchedulerCancel          lazy-cancellation path
    BM_DumbbellSimulation/*     end-to-end simulation throughput
    BM_ScaleFlowsParallel/*     parallel (multi-LP) harness throughput
    BM_ScaleFlowsEngine/*       engine modes on the clustered mesh, plus
                                the optimistic speedup + efficiency gates
    BM_BatchDelivery/*          batched vs unbatched forwarding hot path
    BM_ScaleFlowsDumbbell/*     many-flow dumbbell, batched + unbatched rows
    BM_ScaleFlowsChurn/*        dynamic flow lifecycle churn sweep
    BM_TelemetryTap/*           link-tap reordering telemetry overhead

Churn rows carry their own machine-independent gates: bytes_per_slot must
stay inside the per-slot slab budget (128 = 2x the asserted 64-byte
budget, the factor covering vector capacity growth), completed_frac
>= 0.9 proves the workload reached steady state instead of accumulating
flows, and peak_rss_bytes stays under a hard ceiling. The million-flow
row (BM_ScaleFlows1M, produced by nightly — the PR bench job skips it via
bench_engine.py --skip-1m) is gated the same way on its memory columns
(peak_concurrent >= 2^20, bytes_per_slot, peak RSS) and never on wall
time.

Beyond wall time, the batched hot path is gated on its own metrics (both
sides of each ratio come from the same run, so no machine calibration is
involved): every batched row must report events_per_packet < 1, and the
4096-flow dumbbell must hold a >= 1.3x batched-over-unbatched speedup.

Multi-threaded rows (lps > 1) are skipped when the runner has fewer cores
than the row needs worker threads — on such a machine the threads
serialize and the measurement says nothing about a code regression.

CI runners are not the box the baseline was recorded on, so raw
nanoseconds are not comparable across machines. The gate calibrates with
the pure-compute benchmarks (Newton iteration, libm pow, RNG) that have no
allocator, cache, or data-structure component: the median current/baseline
ratio over those estimates the machine-speed factor, and gated benchmarks
are judged after dividing it out. On the same machine the factor is ~1 and
the gate degenerates to a plain 15% check.

Inputs may be BENCH_engine.json-style reports ({"benchmarks": {name:
{after_ns}}}) or raw google-benchmark JSON; the format is detected per
file.

Usage:
    python3 tools/bench_check.py --current CURRENT.json
                                 [--baseline BENCH_engine.json]
                                 [--threshold 0.15]
"""

import argparse
import json
import os
import pathlib
import re
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

GATED_PATTERNS = [
    r"^BM_SchedulerScheduleRun(/|$)",
    r"^BM_SchedulerCancel$",
    r"^BM_DumbbellSimulation(/|$)",
    r"^BM_ScaleFlowsParallel(/|$)",
    r"^BM_ScaleFlowsEngine(/|$)",
    r"^BM_BatchDelivery(/|$)",
    r"^BM_ScaleFlowsDumbbell(/|$)",
    r"^BM_ScaleFlowsChurn(/|$)",
    r"^BM_TelemetryTap(/|$)",
]

# Batched hot-path acceptance: every batched row must land below one
# scheduler event per delivered packet, and the 4096-flow dumbbell must
# beat its unbatched twin by at least this factor end to end.
BATCHED_ROW_RE = re.compile(r"^BM_(BatchDelivery/1$|ScaleFlowsDumbbell/.*batch:1$)")
BATCH_SPEEDUP_PAIR = ("BM_ScaleFlowsDumbbell/flows:4096/backend:0/batch:1",
                      "BM_ScaleFlowsDumbbell/flows:4096/backend:0/batch:0")
BATCH_MIN_SPEEDUP = 1.3
EVENTS_PER_PACKET_MAX = 1.0

# Churn rows (dynamic flow lifecycle engine): the steady-state slab
# footprint per live flow-id slot is machine-independent and must stay
# inside the asserted 64-byte-per-slot budget (x2 for vector capacity
# growth), and the run must actually churn — most arrivals complete
# within the simulated window. Peak RSS is a whole-process ceiling in
# machine-independent bytes: a slab/transport memory regression fails CI
# even on a runner too slow for the wall-time gates to mean anything.
CHURN_ROW_RE = re.compile(r"^BM_ScaleFlowsChurn(/|$)")
CHURN_BYTES_PER_SLOT_MAX = 128.0
CHURN_MIN_COMPLETED_FRAC = 0.9
# ru_maxrss is process-lifetime-monotone, so this bounds everything the
# scale_flows process touched up to and including the churn rows (they
# register before BM_ScaleFlows1M precisely so its ~9 GB cannot bleed in).
# Measured ~48 MB; 5x headroom for allocator and libc variation.
CHURN_PEAK_RSS_MAX = 256e6

# The million-flow row (BM_ScaleFlows1M): memory-gated, never time-gated —
# it runs in nightly on whatever runner is available. peak_concurrent
# proves the row actually held 2^20 flows; bytes_per_slot is the same
# budget as churn; peak RSS covers the transport objects themselves
# (sender + receiver + monitor ~6.5 kB per live flow, measured ~8.4 GB at
# 2^20 — the ceiling is ~1.5x that). completed_frac and events_per_sec
# ride along as recorded context only.
MILLION_ROW_RE = re.compile(r"^BM_ScaleFlows1M(/|$)")
MILLION_MIN_CONCURRENT = 1 << 20
MILLION_BYTES_PER_SLOT_MAX = 128.0
MILLION_PEAK_RSS_MAX = 12.5e9

# Parallel engine-mode rows (BM_ScaleFlowsEngine): the low-lookahead
# clustered mesh where the conservative barrier is the bottleneck. Both
# gates are same-run ratios, so no machine calibration is involved.
# Bounded optimism must beat conservative barriers by the acceptance
# factor on any runner (even single-core: the win is windows-count, not
# threads). The parallel-efficiency floor additionally divides the
# optimistic 4-LP row against the canonical 1-LP run — meaningful only
# with as many cores as LPs, so it is skipped on smaller runners.
ENGINE_SPEEDUP_PAIR = ("BM_ScaleFlowsEngine/lps:4/mode:2",
                       "BM_ScaleFlowsEngine/lps:4/mode:0")
ENGINE_MIN_SPEEDUP = 1.3
ENGINE_CANONICAL_ROW = "BM_ScaleFlowsEngine/lps:1/mode:0"
ENGINE_EFFICIENCY_FLOOR = 0.25  # speedup over 1-LP / LP count

# Telemetry tap overhead: both ratios compare rows from the same run, so
# no machine calibration is involved. With no taps attached the forwarding
# loop pays one never-taken branch per delivery and must track the
# untapped loop; with taps on every link the sketch update must stay
# within a small constant factor.
TELEMETRY_OFF_MAX_RATIO = 1.15  # BM_TelemetryTap/0 vs BM_PacketForwardLoop
TELEMETRY_ON_MAX_RATIO = 1.6    # BM_TelemetryTap/1 vs BM_TelemetryTap/0

# Parallel-harness rows encode their LP (worker thread) count in the name.
LPS_RE = re.compile(r"/lps:(\d+)")

# Pure-compute benchmarks used to estimate the machine-speed factor.
CALIBRATION_NAMES = ["BM_NewtonAlphaRoot", "BM_ExactPow", "BM_RngUniform"]

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def benchmark_threads(name, row):
    m = LPS_RE.search(name)
    if m:
        return int(m.group(1))
    return int(row.get("threads", 1))


def runner_cpus():
    """Cores available to this process (affinity/cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# google-benchmark's standard per-row fields; any other numeric key on a
# raw-JSON row is a user counter (events_per_packet, lps, ...).
STANDARD_ROW_FIELDS = {
    "name", "run_name", "run_type", "family_index",
    "per_family_instance_index", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "items_per_second",
    "bytes_per_second", "label", "error_occurred", "error_message",
}


def load_times(path):
    """Returns ({name: real_time_ns}, {name: threads}, {name: counters})
    from either format."""
    with open(path) as f:
        raw = json.load(f)
    times = {}
    threads = {}
    counters = {}
    if isinstance(raw.get("benchmarks"), dict):  # BENCH_engine.json report
        for name, row in raw["benchmarks"].items():
            if row.get("after_ns") is not None:
                times[name] = float(row["after_ns"])
                threads[name] = benchmark_threads(name, row)
                if row.get("counters"):
                    counters[name] = row["counters"]
        return times, threads, counters
    for b in raw.get("benchmarks", []):  # raw google-benchmark JSON
        if b.get("error_occurred"):
            continue
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b["name"])
        times[name] = b["real_time"] * TIME_UNIT_NS[b["time_unit"]]
        threads[name] = benchmark_threads(name, b)
        c = {k: v for k, v in b.items()
             if k not in STANDARD_ROW_FIELDS and isinstance(v, (int, float))}
        if c:
            counters[name] = c
    return times, threads, counters


def machine_factor(current, baseline):
    """Median current/baseline ratio over the calibration benchmarks."""
    ratios = []
    for name in CALIBRATION_NAMES:
        if name in current and name in baseline and baseline[name] > 0:
            ratios.append(current[name] / baseline[name])
    if not ratios:
        return 1.0, 0
    factor = statistics.median(ratios)
    # A wildly off factor means the calibration set itself changed; cap the
    # correction rather than let it launder a real regression.
    return min(max(factor, 0.25), 4.0), len(ratios)


def check_batching(current, counters):
    """Gates the batched hot path on its own metrics.

    Both checks compare rows within the current run, so the machine-speed
    factor plays no part. Returns a list of failure descriptions; prints
    one line per check. Rows absent from the run (e.g. a --filter'd rerun)
    are simply not checked — the wall-time MISSING logic already catches a
    gated row that silently disappeared.
    """
    failures = []
    for name in sorted(current):
        if not BATCHED_ROW_RE.match(name):
            continue
        epp = counters.get(name, {}).get("events_per_packet")
        if epp is None:
            print(f"  MISSING  {name}: no events_per_packet counter")
            failures.append(f"{name} (counter missing)")
        elif epp >= EVENTS_PER_PACKET_MAX:
            print(f"  FAILED   {name}: events_per_packet {epp:.3f} "
                  f">= {EVENTS_PER_PACKET_MAX}")
            failures.append(f"{name} (events_per_packet {epp:.3f})")
        else:
            print(f"  OK       {name}: events_per_packet {epp:.3f}")
    batched_name, unbatched_name = BATCH_SPEEDUP_PAIR
    if batched_name in current and unbatched_name in current:
        speedup = current[unbatched_name] / current[batched_name]
        if speedup < BATCH_MIN_SPEEDUP:
            print(f"  FAILED   batched 4096-flow dumbbell speedup "
                  f"{speedup:.2f}x < {BATCH_MIN_SPEEDUP}x")
            failures.append(f"batch speedup {speedup:.2f}x")
        else:
            print(f"  OK       batched 4096-flow dumbbell speedup "
                  f"{speedup:.2f}x (>= {BATCH_MIN_SPEEDUP}x)")
    return failures


def check_churn(current, counters):
    """Gates the churn rows on their machine-independent counters.

    Wall time (arrivals/sec) is handled by the calibrated gate above; this
    checks the per-slot memory budget and that the workload actually
    reached steady state (flows complete, not just accumulate). Returns a
    list of failure descriptions; prints one line per row.
    """
    failures = []
    for name in sorted(current):
        if not CHURN_ROW_RE.match(name):
            continue
        row = counters.get(name, {})
        bps = row.get("bytes_per_slot")
        frac = row.get("completed_frac")
        if bps is None or frac is None:
            print(f"  MISSING  {name}: no bytes_per_slot/completed_frac "
                  f"counters")
            failures.append(f"{name} (counters missing)")
            continue
        rss = row.get("peak_rss_bytes")
        if bps > CHURN_BYTES_PER_SLOT_MAX:
            print(f"  FAILED   {name}: bytes_per_slot {bps:.1f} "
                  f"> {CHURN_BYTES_PER_SLOT_MAX}")
            failures.append(f"{name} (bytes_per_slot {bps:.1f})")
        elif frac < CHURN_MIN_COMPLETED_FRAC:
            print(f"  FAILED   {name}: completed_frac {frac:.3f} "
                  f"< {CHURN_MIN_COMPLETED_FRAC}")
            failures.append(f"{name} (completed_frac {frac:.3f})")
        elif rss is not None and rss > CHURN_PEAK_RSS_MAX:
            # Older baselines predate the counter, so absence is tolerated;
            # once recorded, the ceiling is hard.
            print(f"  FAILED   {name}: peak_rss {rss / 1e9:.2f} GB "
                  f"> {CHURN_PEAK_RSS_MAX / 1e9:.2f} GB")
            failures.append(f"{name} (peak_rss {rss / 1e9:.2f} GB)")
        else:
            rss_str = f", peak_rss {rss / 1e9:.2f} GB" if rss else ""
            print(f"  OK       {name}: bytes_per_slot {bps:.1f}, "
                  f"completed_frac {frac:.3f}{rss_str}")
    return failures


def check_million(current, counters):
    """Gates the 2^20-flow row on its machine-independent memory columns.

    Absent rows are not failures: the PR bench job runs with
    bench_engine.py --skip-1m and only nightly produces the row. When the
    row is present, it must prove the concurrency target and stay inside
    the byte budgets. Returns a list of failure descriptions.
    """
    failures = []
    for name in sorted(current):
        if not MILLION_ROW_RE.match(name):
            continue
        row = counters.get(name, {})
        peak = row.get("peak_concurrent")
        bps = row.get("bytes_per_slot")
        rss = row.get("peak_rss_bytes")
        if peak is None or bps is None or rss is None:
            print(f"  MISSING  {name}: no peak_concurrent/bytes_per_slot/"
                  f"peak_rss_bytes counters")
            failures.append(f"{name} (counters missing)")
            continue
        if peak < MILLION_MIN_CONCURRENT:
            print(f"  FAILED   {name}: peak_concurrent {peak:.0f} "
                  f"< {MILLION_MIN_CONCURRENT}")
            failures.append(f"{name} (peak_concurrent {peak:.0f})")
        elif bps > MILLION_BYTES_PER_SLOT_MAX:
            print(f"  FAILED   {name}: bytes_per_slot {bps:.1f} "
                  f"> {MILLION_BYTES_PER_SLOT_MAX}")
            failures.append(f"{name} (bytes_per_slot {bps:.1f})")
        elif rss > MILLION_PEAK_RSS_MAX:
            print(f"  FAILED   {name}: peak_rss {rss / 1e9:.2f} GB "
                  f"> {MILLION_PEAK_RSS_MAX / 1e9:.2f} GB")
            failures.append(f"{name} (peak_rss {rss / 1e9:.2f} GB)")
        else:
            print(f"  OK       {name}: peak_concurrent {peak:.0f}, "
                  f"bytes_per_slot {bps:.1f}, peak_rss {rss / 1e9:.2f} GB, "
                  f"completed_frac {row.get('completed_frac', 0):.3f}")
    return failures


def check_engine(current):
    """Gates the engine-mode rows on same-run ratios.

    The optimistic row must hold the acceptance speedup over the
    conservative row (same flows, same LP count, same plant). On runners
    with at least as many cores as LPs, the optimistic row must also
    clear the parallel-efficiency floor against the canonical 1-LP row.
    Absent rows are not failures (e.g. a --filter'd rerun); the wall-time
    MISSING logic catches a gated row that silently disappeared. Returns
    a list of failure descriptions.
    """
    failures = []
    optimistic, conservative = ENGINE_SPEEDUP_PAIR
    if optimistic in current and conservative in current:
        speedup = current[conservative] / current[optimistic]
        if speedup < ENGINE_MIN_SPEEDUP:
            print(f"  FAILED   optimistic-vs-conservative engine speedup "
                  f"{speedup:.2f}x < {ENGINE_MIN_SPEEDUP}x")
            failures.append(f"engine speedup {speedup:.2f}x")
        else:
            print(f"  OK       optimistic-vs-conservative engine speedup "
                  f"{speedup:.2f}x (>= {ENGINE_MIN_SPEEDUP}x)")
    lps = benchmark_threads(optimistic, {})
    if optimistic in current and ENGINE_CANONICAL_ROW in current:
        if runner_cpus() < lps:
            print(f"  SKIPPED  parallel-efficiency floor (needs {lps} "
                  f"cores, runner has {runner_cpus()})")
        else:
            efficiency = (current[ENGINE_CANONICAL_ROW] /
                          current[optimistic] / lps)
            if efficiency < ENGINE_EFFICIENCY_FLOOR:
                print(f"  FAILED   parallel efficiency {efficiency:.2f} "
                      f"< {ENGINE_EFFICIENCY_FLOOR} "
                      f"({lps} LPs vs canonical 1-LP row)")
                failures.append(f"parallel efficiency {efficiency:.2f}")
            else:
                print(f"  OK       parallel efficiency {efficiency:.2f} "
                      f"(>= {ENGINE_EFFICIENCY_FLOOR} at {lps} LPs)")
    return failures


def check_telemetry(current):
    """Gates the telemetry tap on same-run ratios.

    BM_TelemetryTap/0 (taps compiled in, none attached) must track
    BM_PacketForwardLoop — the off state is one predictable branch per
    delivery. BM_TelemetryTap/1 (a tap on every link) must stay within a
    small constant factor of /0. Returns a list of failure descriptions.
    """
    failures = []
    off = current.get("BM_TelemetryTap/0")
    on = current.get("BM_TelemetryTap/1")
    plain = current.get("BM_PacketForwardLoop")
    if off is not None and plain is not None and plain > 0:
        ratio = off / plain
        if ratio > TELEMETRY_OFF_MAX_RATIO:
            print(f"  FAILED   telemetry-off forwarding ratio {ratio:.3f} "
                  f"> {TELEMETRY_OFF_MAX_RATIO}")
            failures.append(f"telemetry-off ratio {ratio:.3f}")
        else:
            print(f"  OK       telemetry-off forwarding ratio {ratio:.3f} "
                  f"(<= {TELEMETRY_OFF_MAX_RATIO})")
    if on is not None and off is not None and off > 0:
        ratio = on / off
        if ratio > TELEMETRY_ON_MAX_RATIO:
            print(f"  FAILED   telemetry-on tap ratio {ratio:.3f} "
                  f"> {TELEMETRY_ON_MAX_RATIO}")
            failures.append(f"telemetry-on ratio {ratio:.3f}")
        else:
            print(f"  OK       telemetry-on tap ratio {ratio:.3f} "
                  f"(<= {TELEMETRY_ON_MAX_RATIO})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="benchmark JSON for the build under test")
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "BENCH_engine.json"),
                        help="baseline JSON (default: committed "
                             "BENCH_engine.json)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed slowdown fraction (default 0.15)")
    args = parser.parse_args()

    for path in (args.current, args.baseline):
        if not pathlib.Path(path).exists():
            sys.exit(f"error: {path} not found")

    current, _, cur_counters = load_times(args.current)
    baseline, base_threads, _ = load_times(args.baseline)
    if not current:
        sys.exit(f"error: no benchmark results in {args.current}")

    factor, calib_n = machine_factor(current, baseline)
    print(f"machine-speed factor: {factor:.3f} "
          f"(from {calib_n} calibration benchmark(s))")

    cpus = runner_cpus()
    gated = re.compile("|".join(GATED_PATTERNS))
    checked = 0
    skipped = 0
    failures = []
    for name in sorted(baseline):
        if not gated.search(name):
            continue
        # Multi-threaded rows are only meaningful with as many cores as
        # worker threads: on a smaller runner the threads serialize onto
        # shared cores and the "regression" would just be the core deficit.
        threads = base_threads.get(name, 1)
        if threads > 1 and cpus < threads:
            print(f"  SKIPPED  {name} (needs {threads} cores, "
                  f"runner has {cpus})")
            skipped += 1
            continue
        if name not in current:
            print(f"  MISSING  {name} (in baseline, absent from current run)")
            failures.append(name)
            continue
        checked += 1
        adjusted = current[name] / factor
        change = adjusted / baseline[name] - 1.0
        verdict = "OK"
        if change > args.threshold:
            verdict = "REGRESSED"
            failures.append(name)
        print(f"  {verdict:<9} {name}: baseline {baseline[name] / 1e6:.3f} ms, "
              f"current {current[name] / 1e6:.3f} ms "
              f"(adjusted {adjusted / 1e6:.3f} ms, {change:+.1%})")

    failures += check_batching(current, cur_counters)
    failures += check_churn(current, cur_counters)
    failures += check_million(current, cur_counters)
    failures += check_engine(current)
    failures += check_telemetry(current)

    if checked == 0 and not failures:
        sys.exit("error: no gated benchmarks found in the baseline — "
                 "regenerate BENCH_engine.json with tools/bench_engine.py")
    if failures:
        sys.exit(f"FAIL: {len(failures)} gated check(s) failed "
                 f"(regression threshold {args.threshold:.0%}): "
                 f"{', '.join(failures)}")
    print(f"PASS: {checked} gated benchmark(s) within {args.threshold:.0%}"
          + (f" ({skipped} multi-threaded row(s) skipped)" if skipped else ""))


if __name__ == "__main__":
    main()
