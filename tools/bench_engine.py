#!/usr/bin/env python3
"""Run the engine benchmarks and record before/after numbers.

Runs bench/micro_engine and bench/scale_flows (google-benchmark) from a
Release build, compares each benchmark against a recorded baseline, and
writes BENCH_engine.json at the repository root:

    {"context": {...}, "benchmarks": {name: {baseline_ns, after_ns, speedup}}}

The default baseline is embedded below: it was measured on the seed build
(pre optimization — binary-heap-of-24-byte-nodes event queue, shared_ptr
control blocks per event, heap-allocated SACK/route vectors, std::deque
link queues) so speedups track the zero-allocation hot-path work. Pass
--baseline FILE (google-benchmark JSON) to compare against a different run,
e.g. one captured with:

    ./build/bench/micro_engine --benchmark_format=json > baseline.json

Exits non-zero when a benchmark binary is missing, crashes, exits with an
error, or reports a per-benchmark error (google-benchmark error_occurred),
so CI cannot silently record a partial run.

Usage:
    python3 tools/bench_engine.py [--build-dir build] [--out BENCH_engine.json]
                                  [--baseline FILE] [--filter REGEX]
                                  [--repetitions N] [--skip-scale]
"""

import argparse
import json
import os
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Seed-build numbers (ns), recorded on the reference box (1-core Xeon
# 2.1 GHz, g++ 12.2, -O3). Benchmarks added together with the optimization
# work have no seed counterpart and appear with baseline_ns = null.
EMBEDDED_BASELINE_NS = {
    "BM_SchedulerScheduleRun/1000": 112467.26,
    "BM_SchedulerScheduleRun/100000": 20501445.56,
    "BM_SchedulerCancel": 975522.31,
    "BM_DumbbellSimulation/4": 47030444.80,
    "BM_DumbbellSimulation/16": 54253765.85,
}

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Parallel-harness benchmarks encode their LP count in the name
# (BM_ScaleFlowsParallel/flows:256/lps:4); that, not google-benchmark's own
# threads field, is the number of worker threads the row needs.
LPS_RE = re.compile(r"/lps:(\d+)")

# Row groups that bench_check.py gates at hard same-run ratios. Single-shot
# timings swing well past the gate's margin — the first benchmark in a
# process pays allocator warm-up, and box speed drifts over minutes — so
# each group is always re-measured with warmed-up, randomly interleaved
# repetitions (interleaving spreads each row's reps across the process
# lifetime, so drift hits all rows of a ratio alike) and recorded as
# medians. Everything else stays single-shot for runtime.
RATIO_GROUPS = [
    # batched-vs-unbatched 4096-flow dumbbell speedup
    ("scale_flows", r"BM_ScaleFlowsDumbbell/flows:4096/backend:0/batch:[01]$"),
    # telemetry tap overhead vs the untapped forwarding loop
    ("micro_engine", r"BM_TelemetryTap/[01]$|BM_PacketForwardLoop$"),
    # optimistic-vs-conservative engine speedup on the clustered mesh
    # (plus the 1-LP canonical row the parallel-efficiency floor divides by)
    ("scale_flows", r"BM_ScaleFlowsEngine/lps:[14]/mode:[0123]$"),
]
SPEEDUP_PAIR_REPS = 5
SPEEDUP_PAIR_FLAGS = [
    "--benchmark_enable_random_interleaving=true",
    "--benchmark_min_warmup_time=0.5",
]


def to_ns(value, unit):
    return value * TIME_UNIT_NS[unit]


def benchmark_threads(name, row):
    m = LPS_RE.search(name)
    if m:
        return int(m.group(1))
    return int(row.get("threads", 1))


def runner_cpus():
    """Cores actually available to this process (affinity-aware, so a
    cgroup-limited CI container reports its real allowance, not the host's
    core count — the bug this replaces was trusting the benchmark library's
    num_cpus)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# google-benchmark emits user counters (state.counters[...]) as extra
# top-level keys on each benchmark row; everything NOT in this set and
# numeric is a counter (events_per_packet, lps, ...).
STANDARD_ROW_FIELDS = {
    "name", "run_name", "run_type", "family_index",
    "per_family_instance_index", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "items_per_second",
    "bytes_per_second", "label", "error_occurred", "error_message",
}


def row_counters(b):
    return {k: v for k, v in b.items()
            if k not in STANDARD_ROW_FIELDS and isinstance(v, (int, float))}


def load_benchmark_json(raw):
    """Extracts {name: real_time_ns} plus the context block.

    Returns (context, times, threads, counters, errors) where threads maps
    each benchmark to the worker-thread count it needs, counters maps it to
    its user counters (events_per_packet, lps) and errors lists benchmarks
    that reported error_occurred instead of a measurement.
    """
    times = {}
    threads = {}
    counters = {}
    errors = []
    for b in raw.get("benchmarks", []):
        name = b.get("run_name", b["name"])
        if b.get("error_occurred"):
            errors.append(f"{name}: {b.get('error_message', 'unknown error')}")
            continue
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        times[name] = to_ns(b["real_time"], b["time_unit"])
        threads[name] = benchmark_threads(name, b)
        c = row_counters(b)
        if c:
            counters[name] = c
    return raw.get("context", {}), times, threads, counters, errors


def run_binary(binary, args, bench_filter=None, repetitions=None,
               extra_flags=()):
    """Runs one google-benchmark binary; returns (context, times, threads,
    counters).

    Exits non-zero on any failure mode: missing binary, crash, nonzero
    exit, unparseable output, or per-benchmark errors.
    """
    if not binary.exists():
        sys.exit(f"error: {binary} not found — build with "
                 f"cmake -S . -B {args.build_dir} -DCMAKE_BUILD_TYPE=Release "
                 f"&& cmake --build {args.build_dir} --target {binary.name}")
    if bench_filter is None:
        bench_filter = args.filter
    if repetitions is None:
        repetitions = args.repetitions
    cmd = [str(binary), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
        cmd.append("--benchmark_report_aggregates_only=true")
    cmd.extend(extra_flags)
    print(f"running: {' '.join(cmd)}", file=sys.stderr)
    run = subprocess.run(cmd, capture_output=True, text=True)
    if run.returncode != 0:
        sys.stderr.write(run.stderr)
        sys.exit(f"error: {binary.name} exited with status {run.returncode}")
    try:
        raw = json.loads(run.stdout)
    except json.JSONDecodeError as e:
        sys.exit(f"error: {binary.name} produced unparseable JSON: {e}")
    context, times, threads, counters, errors = load_benchmark_json(raw)
    if errors:
        for line in errors:
            print(f"error: {binary.name}: {line}", file=sys.stderr)
        sys.exit(f"error: {len(errors)} benchmark(s) failed in {binary.name}")
    if not times:
        sys.exit(f"error: {binary.name} reported no benchmark results")
    return context, times, threads, counters


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_engine.json"),
                        help="output path (default: BENCH_engine.json at repo root)")
    parser.add_argument("--baseline", default=None,
                        help="google-benchmark JSON to use as the baseline "
                             "(default: embedded seed-build numbers)")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter regex passed through")
    parser.add_argument("--repetitions", type=int, default=0,
                        help="--benchmark_repetitions (median is kept)")
    parser.add_argument("--skip-scale", action="store_true",
                        help="run only micro_engine (skip scale_flows)")
    parser.add_argument("--skip-1m", action="store_true",
                        help="skip the BM_ScaleFlows1M row (minutes of wall "
                             "clock and ~8 GB RSS) — the PR-gating bench job "
                             "caps itself at the 4096-flow rows and leaves "
                             "the million-flow row to nightly")
    args = parser.parse_args()

    if args.skip_1m:
        if args.filter:
            sys.exit("error: --skip-1m cannot be combined with --filter "
                     "(put -BM_ScaleFlows1M in your filter instead)")
        # google-benchmark: a leading '-' negates the filter regex.
        args.filter = "-BM_ScaleFlows1M"

    if args.baseline and not pathlib.Path(args.baseline).exists():
        sys.exit(f"error: baseline file {args.baseline} not found")

    bench_dir = REPO_ROOT / args.build_dir / "bench"
    binaries = [bench_dir / "micro_engine"]
    if not args.skip_scale:
        binaries.append(bench_dir / "scale_flows")

    context = {}
    after = {}
    thread_counts = {}
    counter_map = {}
    for binary in binaries:
        ctx, times, threads, counters = run_binary(binary, args)
        context = context or ctx
        after.update(times)
        thread_counts.update(threads)
        counter_map.update(counters)

    # Re-measure each hard-ratio row group with repetitions and keep the
    # medians, unless this run already used repetitions or filtered the
    # group out.
    if args.repetitions <= 1:
        for binary_name, group_filter in RATIO_GROUPS:
            binary = bench_dir / binary_name
            if binary not in binaries:
                continue
            if not any(re.fullmatch(group_filter, n) for n in after):
                continue
            _, times, threads, counters = run_binary(
                binary, args, bench_filter=group_filter,
                repetitions=SPEEDUP_PAIR_REPS, extra_flags=SPEEDUP_PAIR_FLAGS)
            after.update(times)
            thread_counts.update(threads)
            counter_map.update(counters)

    if args.baseline:
        with open(args.baseline) as f:
            _, baseline, _, _, _ = load_benchmark_json(json.load(f))
        baseline_source = args.baseline
    else:
        baseline = dict(EMBEDDED_BASELINE_NS)
        baseline_source = "embedded seed-build measurements"

    benchmarks = {}
    for name, after_ns in after.items():
        base_ns = baseline.get(name)
        benchmarks[name] = {
            "baseline_ns": round(base_ns, 2) if base_ns is not None else None,
            "after_ns": round(after_ns, 2),
            "speedup": round(base_ns / after_ns, 2) if base_ns else None,
            "threads": thread_counts.get(name, 1),
        }
        # User counters (events_per_packet, lps) ride along per row so the
        # regression gate can check engine metrics, not just wall time.
        if name in counter_map:
            benchmarks[name]["counters"] = {
                k: round(v, 4) for k, v in sorted(counter_map[name].items())}

    report = {
        "generated_by": "tools/bench_engine.py",
        "baseline_source": baseline_source,
        "context": {k: context.get(k) for k in
                    ("date", "mhz_per_cpu", "library_build_type")},
        "benchmarks": benchmarks,
    }
    # Cores the recording process could actually use — not the benchmark
    # library's context value, which reports hardware concurrency even when
    # the container is pinned to fewer cores. Consumers (bench_check.py)
    # need this to decide whether multi-threaded rows were recorded at
    # full parallelism.
    report["context"]["num_cpus"] = runner_cpus()
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)

    width = max(len(n) for n in benchmarks)
    for name, row in benchmarks.items():
        speed = f"{row['speedup']:.2f}x" if row["speedup"] else "  new"
        print(f"{name:<{width}}  {speed:>7}  "
              f"{row['after_ns'] / 1e6:10.3f} ms after")


if __name__ == "__main__":
    main()
