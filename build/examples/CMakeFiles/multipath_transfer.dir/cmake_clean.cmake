file(REMOVE_RECURSE
  "CMakeFiles/multipath_transfer.dir/multipath_transfer.cpp.o"
  "CMakeFiles/multipath_transfer.dir/multipath_transfer.cpp.o.d"
  "multipath_transfer"
  "multipath_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
