# Empty dependencies file for fairness_duel.
# This may be replaced when dependencies are built.
