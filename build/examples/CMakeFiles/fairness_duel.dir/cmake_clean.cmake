file(REMOVE_RECURSE
  "CMakeFiles/fairness_duel.dir/fairness_duel.cpp.o"
  "CMakeFiles/fairness_duel.dir/fairness_duel.cpp.o.d"
  "fairness_duel"
  "fairness_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
