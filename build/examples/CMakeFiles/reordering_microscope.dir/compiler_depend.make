# Empty compiler generated dependencies file for reordering_microscope.
# This may be replaced when dependencies are built.
