file(REMOVE_RECURSE
  "CMakeFiles/reordering_microscope.dir/reordering_microscope.cpp.o"
  "CMakeFiles/reordering_microscope.dir/reordering_microscope.cpp.o.d"
  "reordering_microscope"
  "reordering_microscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reordering_microscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
