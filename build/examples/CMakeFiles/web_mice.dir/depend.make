# Empty dependencies file for web_mice.
# This may be replaced when dependencies are built.
