file(REMOVE_RECURSE
  "CMakeFiles/web_mice.dir/web_mice.cpp.o"
  "CMakeFiles/web_mice.dir/web_mice.cpp.o.d"
  "web_mice"
  "web_mice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_mice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
