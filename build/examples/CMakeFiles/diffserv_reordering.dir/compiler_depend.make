# Empty compiler generated dependencies file for diffserv_reordering.
# This may be replaced when dependencies are built.
