file(REMOVE_RECURSE
  "CMakeFiles/diffserv_reordering.dir/diffserv_reordering.cpp.o"
  "CMakeFiles/diffserv_reordering.dir/diffserv_reordering.cpp.o.d"
  "diffserv_reordering"
  "diffserv_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffserv_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
