file(REMOVE_RECURSE
  "CMakeFiles/fig3_cov.dir/fig3_cov.cpp.o"
  "CMakeFiles/fig3_cov.dir/fig3_cov.cpp.o.d"
  "fig3_cov"
  "fig3_cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
