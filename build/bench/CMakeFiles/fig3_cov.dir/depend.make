# Empty dependencies file for fig3_cov.
# This may be replaced when dependencies are built.
