file(REMOVE_RECURSE
  "CMakeFiles/fig2_fairness.dir/fig2_fairness.cpp.o"
  "CMakeFiles/fig2_fairness.dir/fig2_fairness.cpp.o.d"
  "fig2_fairness"
  "fig2_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
