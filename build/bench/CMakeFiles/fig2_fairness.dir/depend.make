# Empty dependencies file for fig2_fairness.
# This may be replaced when dependencies are built.
