# Empty dependencies file for fig4_param_sweep.
# This may be replaced when dependencies are built.
