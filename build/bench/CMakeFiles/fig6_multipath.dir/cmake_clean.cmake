file(REMOVE_RECURSE
  "CMakeFiles/fig6_multipath.dir/fig6_multipath.cpp.o"
  "CMakeFiles/fig6_multipath.dir/fig6_multipath.cpp.o.d"
  "fig6_multipath"
  "fig6_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
