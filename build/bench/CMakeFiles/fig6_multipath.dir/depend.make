# Empty dependencies file for fig6_multipath.
# This may be replaced when dependencies are built.
