file(REMOVE_RECURSE
  "CMakeFiles/ablation_pr.dir/ablation_pr.cpp.o"
  "CMakeFiles/ablation_pr.dir/ablation_pr.cpp.o.d"
  "ablation_pr"
  "ablation_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
