# Empty compiler generated dependencies file for ablation_pr.
# This may be replaced when dependencies are built.
