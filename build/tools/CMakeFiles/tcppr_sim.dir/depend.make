# Empty dependencies file for tcppr_sim.
# This may be replaced when dependencies are built.
