file(REMOVE_RECURSE
  "CMakeFiles/tcppr_sim.dir/tcppr_sim.cpp.o"
  "CMakeFiles/tcppr_sim.dir/tcppr_sim.cpp.o.d"
  "tcppr_sim"
  "tcppr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcppr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
