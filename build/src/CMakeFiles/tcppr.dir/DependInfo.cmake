
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/sources.cpp" "src/CMakeFiles/tcppr.dir/app/sources.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/app/sources.cpp.o.d"
  "/root/repo/src/core/tcp_pr.cpp" "src/CMakeFiles/tcppr.dir/core/tcp_pr.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/core/tcp_pr.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/tcppr.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/scenarios.cpp" "src/CMakeFiles/tcppr.dir/harness/scenarios.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/harness/scenarios.cpp.o.d"
  "/root/repo/src/harness/short_flows.cpp" "src/CMakeFiles/tcppr.dir/harness/short_flows.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/harness/short_flows.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/tcppr.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/net/link.cpp.o.d"
  "/root/repo/src/net/link_flapper.cpp" "src/CMakeFiles/tcppr.dir/net/link_flapper.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/net/link_flapper.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/tcppr.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/tcppr.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/net/node.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/tcppr.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/net/queue.cpp.o.d"
  "/root/repo/src/routing/graph.cpp" "src/CMakeFiles/tcppr.dir/routing/graph.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/routing/graph.cpp.o.d"
  "/root/repo/src/routing/multipath.cpp" "src/CMakeFiles/tcppr.dir/routing/multipath.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/routing/multipath.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/tcppr.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/tcppr.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/tcppr.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/stats/flow_stats.cpp" "src/CMakeFiles/tcppr.dir/stats/flow_stats.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/stats/flow_stats.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/CMakeFiles/tcppr.dir/stats/metrics.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/stats/metrics.cpp.o.d"
  "/root/repo/src/stats/reorder.cpp" "src/CMakeFiles/tcppr.dir/stats/reorder.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/stats/reorder.cpp.o.d"
  "/root/repo/src/tcp/door.cpp" "src/CMakeFiles/tcppr.dir/tcp/door.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/door.cpp.o.d"
  "/root/repo/src/tcp/eifel.cpp" "src/CMakeFiles/tcppr.dir/tcp/eifel.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/eifel.cpp.o.d"
  "/root/repo/src/tcp/mitigation.cpp" "src/CMakeFiles/tcppr.dir/tcp/mitigation.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/mitigation.cpp.o.d"
  "/root/repo/src/tcp/newreno.cpp" "src/CMakeFiles/tcppr.dir/tcp/newreno.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/newreno.cpp.o.d"
  "/root/repo/src/tcp/receiver.cpp" "src/CMakeFiles/tcppr.dir/tcp/receiver.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/receiver.cpp.o.d"
  "/root/repo/src/tcp/reno.cpp" "src/CMakeFiles/tcppr.dir/tcp/reno.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/reno.cpp.o.d"
  "/root/repo/src/tcp/rto.cpp" "src/CMakeFiles/tcppr.dir/tcp/rto.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/rto.cpp.o.d"
  "/root/repo/src/tcp/sack.cpp" "src/CMakeFiles/tcppr.dir/tcp/sack.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/sack.cpp.o.d"
  "/root/repo/src/tcp/sender_base.cpp" "src/CMakeFiles/tcppr.dir/tcp/sender_base.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/sender_base.cpp.o.d"
  "/root/repo/src/tcp/tahoe.cpp" "src/CMakeFiles/tcppr.dir/tcp/tahoe.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/tahoe.cpp.o.d"
  "/root/repo/src/tcp/tdfr.cpp" "src/CMakeFiles/tcppr.dir/tcp/tdfr.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/tcp/tdfr.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/tcppr.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/trace/trace.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/tcppr.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/tcppr.dir/util/logging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
