# Empty compiler generated dependencies file for tcppr.
# This may be replaced when dependencies are built.
