file(REMOVE_RECURSE
  "libtcppr.a"
)
