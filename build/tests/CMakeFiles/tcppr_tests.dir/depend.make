# Empty dependencies file for tcppr_tests.
# This may be replaced when dependencies are built.
