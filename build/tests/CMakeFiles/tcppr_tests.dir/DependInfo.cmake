
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/door_tahoe_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/door_tahoe_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/door_tahoe_test.cpp.o.d"
  "/root/repo/tests/event_queue_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/graph_property_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/graph_property_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/graph_property_test.cpp.o.d"
  "/root/repo/tests/harness_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/harness_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/harness_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/interop_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/interop_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/interop_test.cpp.o.d"
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/mitigation_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/mitigation_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/mitigation_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/queue_disc_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/queue_disc_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/queue_disc_test.cpp.o.d"
  "/root/repo/tests/receiver_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/receiver_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/receiver_test.cpp.o.d"
  "/root/repo/tests/reno_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/reno_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/reno_test.cpp.o.d"
  "/root/repo/tests/reorder_stats_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/reorder_stats_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/reorder_stats_test.cpp.o.d"
  "/root/repo/tests/routing_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/routing_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/routing_test.cpp.o.d"
  "/root/repo/tests/rto_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/rto_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/rto_test.cpp.o.d"
  "/root/repo/tests/sack_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/sack_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/sack_test.cpp.o.d"
  "/root/repo/tests/scheduler_fuzz_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/scheduler_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/scheduler_fuzz_test.cpp.o.d"
  "/root/repo/tests/short_flows_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/short_flows_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/short_flows_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/tcp_pr_internals_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/tcp_pr_internals_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/tcp_pr_internals_test.cpp.o.d"
  "/root/repo/tests/tcp_pr_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/tcp_pr_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/tcp_pr_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/tcppr_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/tcppr_tests.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcppr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
