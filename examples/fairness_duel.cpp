// Fairness duel: TCP-PR and TCP-SACK sharing one bottleneck (Section 4).
//
// Launches n/2 TCP-PR and n/2 TCP-SACK bulk flows between the same pair of
// hosts across a dumbbell, runs to steady state, and prints each flow's
// throughput plus the paper's fairness metrics (normalized throughput,
// mean per protocol, CoV, and Jain's index as a cross-check).
//
//   ./fairness_duel [total_flows] [bottleneck_mbps] [seconds]
//   ./fairness_duel 16 15 100
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace tcppr;
  using harness::TcpVariant;

  const int total_flows = argc > 1 ? std::atoi(argv[1]) : 8;
  const double mbps = argc > 2 ? std::atof(argv[2]) : 15.0;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 60.0;

  harness::DumbbellConfig config;
  config.pr_flows = total_flows / 2;
  config.sack_flows = total_flows - total_flows / 2;
  config.bottleneck_bw_bps = mbps * 1e6;
  auto scenario = harness::make_dumbbell(config);

  harness::MeasurementWindow window;
  window.total = sim::Duration::seconds(seconds);
  window.measured = sim::Duration::seconds(seconds / 2);
  const auto result = run_scenario(*scenario, window);

  std::printf("%d flows (%d tcp-pr + %d sack) on a %.1f Mbps bottleneck, "
              "measured over the last %.0f s\n\n",
              total_flows, config.pr_flows, config.sack_flows, mbps,
              window.measured.as_seconds());
  std::printf("%-4s %-8s %12s %12s %8s %8s\n", "flow", "variant",
              "thr (kbps)", "normalized", "rtx", "timeouts");
  const auto norm = result.normalized();
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const auto& f = result.flows[i];
    std::printf("%-4d %-8s %12.0f %12.3f %8llu %8llu\n",
                static_cast<int>(f.flow), to_string(f.variant),
                f.throughput_bps / 1e3, norm[i],
                static_cast<unsigned long long>(f.sender.retransmissions),
                static_cast<unsigned long long>(f.sender.timeouts));
  }

  std::printf("\nmean normalized throughput: tcp-pr %.3f, sack %.3f\n",
              result.mean_normalized(TcpVariant::kTcpPr),
              result.mean_normalized(TcpVariant::kSack));
  std::printf("CoV: tcp-pr %.3f, sack %.3f\n",
              result.cov(TcpVariant::kTcpPr),
              result.cov(TcpVariant::kSack));
  std::printf("Jain index over all flows: %.3f\n",
              stats::jain_index(result.throughputs()));
  std::printf("bottleneck loss rate: %.2f%%\n", 100.0 * result.loss_rate);
  return 0;
}
