// Web mice over multi-path routing: flow completion times.
//
// Short transfers are where loss-detection latency and spurious
// retransmissions hurt the most — a single bogus recovery can double a
// mouse's lifetime. This example runs a Poisson stream of short transfers
// (5-50 segments, log-uniform) across the Figure 5 mesh with full
// multi-path spraying and compares completion-time statistics for each
// sender variant.
//
//   ./web_mice [epsilon] [seconds]
//   ./web_mice 0 60
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/short_flows.hpp"

namespace {

using namespace tcppr;
using harness::TcpVariant;

struct Row {
  const char* name;
  std::uint64_t completed = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p95_s = 0;
};

Row run(TcpVariant variant, double epsilon, double seconds) {
  harness::MultipathConfig mc;
  mc.variant = variant;  // unused bulk flow stays idle
  mc.epsilon = epsilon;
  auto scenario = harness::make_multipath(mc);

  harness::ShortFlowPool::Config config;
  config.variant = variant;
  config.mean_interarrival_s = 0.25;
  config.min_segments = 5;
  config.max_segments = 50;
  config.seed = 11;
  harness::ShortFlowPool pool(scenario->network, scenario->src_host,
                              scenario->dst_host, config);
  pool.start();
  scenario->sched.run_until(sim::TimePoint::from_seconds(seconds));
  pool.stop();

  Row row;
  row.name = to_string(variant);
  row.completed = pool.flows_completed();
  row.mean_s = pool.mean_completion_time();
  std::vector<double> sorted = pool.completion_times();
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    row.p50_s = sorted[sorted.size() / 2];
    row.p95_s = sorted[sorted.size() * 95 / 100];
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 0.0;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 60.0;
  std::printf(
      "short transfers (5-50 segments) over the multi-path mesh, "
      "epsilon=%g, %g s\n\n",
      epsilon, seconds);
  std::printf("%-10s %10s %12s %12s %12s\n", "variant", "completed",
              "mean FCT", "median FCT", "p95 FCT");
  for (const TcpVariant v :
       {TcpVariant::kTcpPr, TcpVariant::kSack, TcpVariant::kNewReno,
        TcpVariant::kIncByN, TcpVariant::kTdFr}) {
    const Row row = run(v, epsilon, seconds);
    std::printf("%-10s %10llu %10.3f s %10.3f s %10.3f s\n", row.name,
                static_cast<unsigned long long>(row.completed), row.mean_s,
                row.p50_s, row.p95_s);
  }
  std::printf(
      "\nwith epsilon=0 (full spraying), timer-based senders (tcp-pr,"
      "\ntd-fr) should show the tightest tails (p95) — a single spurious"
      "\nrecovery can double a mouse's lifetime; with epsilon=500 (single"
      "\npath) all variants should tie.\n");
  return 0;
}
