// Reordering microscope: watch a congestion window react to a route flap.
//
// One flow runs over two paths whose one-way delays differ by 4x; the
// route flaps between them every 250 ms (the oscillation cause of
// reordering cited in the paper's introduction). The example renders an
// ASCII strip chart of cwnd over time for TCP-PR and for TCP-SACK: SACK's
// window is repeatedly cut by spurious fast retransmits at every flap,
// TCP-PR's is not.
//
//   ./reordering_microscope [seconds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "harness/scenarios.hpp"
#include "routing/multipath.hpp"

namespace {

using namespace tcppr;

struct Trace {
  std::vector<double> cwnd_by_tick;  // 100 ms ticks
  tcp::SenderStats sender;
  tcp::ReceiverStats receiver;
};

Trace run(harness::TcpVariant variant, double seconds) {
  auto scenario = std::make_unique<harness::Scenario>();
  net::Network& nw = scenario->network;
  const auto src = nw.add_node();
  const auto dst = nw.add_node();
  net::LinkConfig fast;
  fast.bandwidth_bps = 10e6;
  fast.delay = sim::Duration::millis(5);
  net::LinkConfig slow = fast;
  slow.delay = sim::Duration::millis(20);

  // Path A: one relay of 5 ms links; path B: one relay of 20 ms links.
  routing::PathSet paths;
  paths.src = src;
  paths.dst = dst;
  const auto ra = nw.add_node();
  nw.add_duplex_link(src, ra, fast);
  nw.add_duplex_link(ra, dst, fast);
  const auto rb = nw.add_node();
  nw.add_duplex_link(src, rb, slow);
  nw.add_duplex_link(rb, dst, slow);
  paths.paths = {{src, ra, dst}, {src, rb, dst}};
  paths.costs = {10, 40};
  nw.compute_static_routes();

  auto policy = std::make_unique<routing::RouteFlapPolicy>(
      scenario->sched, paths, sim::Duration::millis(250));
  nw.node(src).set_source_routing_policy(policy.get());
  scenario->policies.push_back(std::move(policy));

  tcp::TcpConfig tcp_config;
  tcp_config.max_cwnd = 200;
  scenario->add_flow(variant, src, dst, 1, tcp_config, core::TcpPrConfig{},
                     sim::TimePoint::origin());

  Trace trace;
  auto* sender = scenario->senders[0].get();
  const int ticks = static_cast<int>(seconds * 10);
  trace.cwnd_by_tick.resize(ticks, 0);
  for (int tick = 0; tick < ticks; ++tick) {
    scenario->sched.run_until(
        sim::TimePoint::from_seconds((tick + 1) * 0.1));
    trace.cwnd_by_tick[tick] = sender->cwnd();
  }
  trace.sender = sender->stats();
  trace.receiver = scenario->receivers[0]->stats();
  return trace;
}

void render(const char* name, const Trace& trace) {
  const double peak =
      *std::max_element(trace.cwnd_by_tick.begin(), trace.cwnd_by_tick.end());
  std::printf("\n%s  (peak cwnd %.0f, %llu spurious-looking rtx, "
              "%llu duplicates at receiver)\n",
              name, peak,
              static_cast<unsigned long long>(trace.sender.retransmissions),
              static_cast<unsigned long long>(trace.receiver.duplicates));
  constexpr int kRows = 10;
  for (int row = kRows; row >= 1; --row) {
    std::printf("%7.0f |", peak * row / kRows);
    for (std::size_t tick = 0; tick < trace.cwnd_by_tick.size(); ++tick) {
      const double frac = trace.cwnd_by_tick[tick] / peak * kRows;
      std::putchar(frac >= row ? '#' : ' ');
    }
    std::printf("\n");
  }
  std::printf("        +");
  for (std::size_t i = 0; i < trace.cwnd_by_tick.size(); ++i) {
    std::putchar(i % 10 == 9 ? '+' : '-');
  }
  std::printf("  (1 col = 100 ms)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 8.0;
  std::printf("route flap every 250 ms between a 10 ms and a 40 ms path\n");
  render("tcp-pr", run(harness::TcpVariant::kTcpPr, seconds));
  render("tcp-sack", run(harness::TcpVariant::kSack, seconds));
  return 0;
}
