// Quickstart: the smallest complete use of the library.
//
// Builds a three-node path (source - router - destination), attaches a
// TCP-PR sender and a standard TCP receiver, transfers 2 MB, and prints
// what happened. Start here to see the public API end to end.
//
//   ./quickstart
#include <cstdio>

#include "core/tcp_pr.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "tcp/receiver.hpp"

int main() {
  using namespace tcppr;

  // 1. An event scheduler drives everything.
  sim::Scheduler sched;

  // 2. Build the topology: src --1Gbps-- router --10Mbps/20ms-- dst.
  net::Network network(sched);
  const net::NodeId src = network.add_node();
  const net::NodeId router = network.add_node();
  const net::NodeId dst = network.add_node();

  net::LinkConfig access;
  access.bandwidth_bps = 1e9;
  access.delay = sim::Duration::millis(1);
  network.add_duplex_link(src, router, access);

  net::LinkConfig bottleneck;
  bottleneck.bandwidth_bps = 10e6;
  bottleneck.delay = sim::Duration::millis(20);
  bottleneck.queue_limit_packets = 100;
  network.add_duplex_link(router, dst, bottleneck);
  network.compute_static_routes();

  // 3. A receiver at dst and a TCP-PR sender at src, flow id 1.
  const net::FlowId flow = 1;
  tcp::Receiver receiver(network, dst, src, flow);

  tcp::TcpConfig tcp_config;          // 1000-byte segments by default
  core::TcpPrConfig pr_config;        // alpha = 0.995, beta = 3 (the paper's)
  core::TcpPrSender sender(network, src, dst, flow, tcp_config, pr_config);

  // 4. Transfer 2000 segments (2 MB) and stop when fully acknowledged.
  sender.set_data_source(std::make_unique<tcp::FixedDataSource>(2000));
  sender.set_completion_callback([&] {
    std::printf("transfer complete at t=%.3f s\n",
                sched.now().as_seconds());
    sched.stop();
  });

  // Watch the congestion window evolve (sampled every half second).
  sender.set_cwnd_listener([&, last = -1.0](sim::TimePoint t,
                                            double cwnd) mutable {
    if (t.as_seconds() - last >= 0.5) {
      last = t.as_seconds();
      std::printf("  t=%6.2f s  cwnd=%7.2f  mode=%s  mxrtt=%.0f ms\n",
                  t.as_seconds(), cwnd,
                  sender.mode() == core::TcpPrSender::Mode::kSlowStart
                      ? "slow-start"
                      : "cong-avoid",
                  sender.mxrtt().as_seconds() * 1e3);
    }
  });

  sender.start();
  sched.run();

  // 5. Inspect the statistics both endpoints kept.
  const auto& s = sender.stats();
  const auto& r = receiver.stats();
  std::printf("\nsender:   %llu data packets, %llu retransmissions, "
              "%llu window halvings\n",
              static_cast<unsigned long long>(s.data_packets_sent),
              static_cast<unsigned long long>(s.retransmissions),
              static_cast<unsigned long long>(s.cwnd_halvings));
  std::printf("receiver: %llu packets, %llu duplicates, %llu out-of-order, "
              "%.2f MB in order\n",
              static_cast<unsigned long long>(r.data_packets_received),
              static_cast<unsigned long long>(r.duplicates),
              static_cast<unsigned long long>(r.out_of_order),
              static_cast<double>(r.goodput_bytes) / 1e6);
  std::printf("goodput:  %.2f Mbps\n",
              static_cast<double>(r.goodput_bytes) * 8.0 /
                  sched.now().as_seconds() / 1e6);
  return 0;
}
