// Multi-path transfer: the paper's motivating scenario (Section 5).
//
// A single bulk flow crosses the Figure 5 mesh — four node-disjoint paths
// of increasing length — with per-packet multi-path routing controlled by
// epsilon. Run any sender variant and watch how it copes with the
// persistent reordering the unequal path delays create.
//
//   ./multipath_transfer [variant] [epsilon] [seconds]
//   ./multipath_transfer tcp-pr 0 30
//   ./multipath_transfer sack 0 30
//   variants: tcp-pr sack reno newreno td-fr dsack-nm inc-by-1 inc-by-n
//             ewma eifel
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "harness/experiment.hpp"

namespace {

using namespace tcppr;
using harness::TcpVariant;

std::optional<TcpVariant> parse_variant(const char* name) {
  for (const TcpVariant v :
       {TcpVariant::kTcpPr, TcpVariant::kSack, TcpVariant::kReno,
        TcpVariant::kNewReno, TcpVariant::kTdFr, TcpVariant::kDsackNm,
        TcpVariant::kIncByOne, TcpVariant::kIncByN, TcpVariant::kEwma,
        TcpVariant::kEifel}) {
    if (std::strcmp(name, to_string(v)) == 0) return v;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const char* variant_name = argc > 1 ? argv[1] : "tcp-pr";
  const double epsilon = argc > 2 ? std::atof(argv[2]) : 0.0;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 30.0;

  const auto variant = parse_variant(variant_name);
  if (!variant) {
    std::fprintf(stderr, "unknown variant '%s'\n", variant_name);
    return 1;
  }

  harness::MultipathConfig config;
  config.variant = *variant;
  config.epsilon = epsilon;
  auto scenario = harness::make_multipath(config);

  std::printf("%s over %d disjoint paths, epsilon=%g, %.0f s\n",
              variant_name, config.path_count, epsilon, seconds);

  double prev_goodput = 0;
  for (double t = 5; t <= seconds; t += 5) {
    scenario->sched.run_until(sim::TimePoint::from_seconds(t));
    const double goodput =
        static_cast<double>(scenario->receivers[0]->stats().goodput_bytes);
    std::printf("  t=%5.1f s  goodput %6.2f Mbps  cwnd %8.1f\n", t,
                (goodput - prev_goodput) * 8.0 / 5.0 / 1e6,
                scenario->senders[0]->cwnd());
    prev_goodput = goodput;
  }

  const auto& s = scenario->senders[0]->stats();
  const auto& r = scenario->receivers[0]->stats();
  std::printf("\npath usage (data direction):");
  auto* policy =
      dynamic_cast<routing::MultipathSelector*>(scenario->policies[0].get());
  for (int i = 0; i < policy->path_count(); ++i) {
    std::printf("  path%d=%llu", i,
                static_cast<unsigned long long>(policy->picks()[i]));
  }
  std::printf("\nreordering at receiver: %llu out-of-order arrivals, max "
              "displacement %lld segments\n",
              static_cast<unsigned long long>(r.out_of_order),
              static_cast<long long>(r.max_reorder_extent));
  std::printf("sender: %llu retransmissions (%llu spurious detected), "
              "%llu timeouts, %llu halvings\n",
              static_cast<unsigned long long>(s.retransmissions),
              static_cast<unsigned long long>(s.spurious_retransmits_detected),
              static_cast<unsigned long long>(s.timeouts),
              static_cast<unsigned long long>(s.cwnd_halvings));
  std::printf("receiver duplicates (wasted deliveries): %llu\n",
              static_cast<unsigned long long>(r.duplicates));
  std::printf("average goodput: %.2f Mbps\n",
              static_cast<double>(r.goodput_bytes) * 8.0 / seconds / 1e6);
  return 0;
}
