// DiffServ-induced reordering (the paper's QoS motivation, Section 1).
//
// A bottleneck router forwards through a strict-priority queue; each
// packet of the measured flow is independently marked high-priority with
// probability p, so high-priority segments overtake queued low-priority
// ones and the flow is persistently reordered — no multi-path routing
// involved. The example contrasts TCP-PR and TCP-SACK over the same
// router, printing RFC 4737-style reorder metrics from the receiver tap.
//
//   ./diffserv_reordering [mark_probability] [seconds]
//   ./diffserv_reordering 0.3 30
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/tcp_pr.hpp"
#include "harness/scenarios.hpp"
#include "net/network.hpp"
#include "stats/reorder.hpp"
#include "tcp/receiver.hpp"

namespace {

using namespace tcppr;

struct Result {
  double goodput_mbps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates = 0;
  stats::ReorderMonitor monitor;
};

Result run(harness::TcpVariant variant, double mark_probability,
           double seconds) {
  sim::Scheduler sched;
  net::Network network(sched);
  const auto src = network.add_node();
  const auto router = network.add_node();
  const auto dst = network.add_node();

  net::LinkConfig access;
  access.bandwidth_bps = 1e9;
  access.delay = sim::Duration::millis(1);
  network.add_duplex_link(src, router, access);

  // Forward bottleneck: strict-priority bands with probabilistic marking.
  auto rng = std::make_shared<sim::Rng>(42);
  auto queue = std::make_unique<net::PriorityQueue>(
      2, 200, [rng, mark_probability](const net::Packet&) {
        return rng->bernoulli(mark_probability) ? 0 : 1;
      });
  network.add_link_with_queue(router, dst, 10e6, sim::Duration::millis(15),
                              std::move(queue));
  net::LinkConfig back;
  back.bandwidth_bps = 10e6;
  back.delay = sim::Duration::millis(15);
  network.add_link(dst, router, back);
  network.compute_static_routes();

  tcp::Receiver receiver(network, dst, src, 1);
  Result result;
  receiver.set_data_tap([&](const net::Packet& pkt) {
    result.monitor.on_arrival(pkt.tcp.seq);
  });

  tcp::TcpConfig tcp_config;
  tcp_config.max_cwnd = 60;  // below the queue limits: pure reordering
  const auto sender =
      harness::make_sender(variant, network, src, dst, 1, tcp_config,
                           core::TcpPrConfig{});
  sender->start();
  sched.run_until(sim::TimePoint::from_seconds(seconds));

  result.goodput_mbps = static_cast<double>(
                            receiver.stats().goodput_bytes) *
                        8.0 / seconds / 1e6;
  result.retransmissions = sender->stats().retransmissions;
  result.duplicates = receiver.stats().duplicates;
  return result;
}

void report(const char* name, const Result& r) {
  std::printf("\n%s:\n", name);
  std::printf("  goodput               %8.2f Mbps\n", r.goodput_mbps);
  std::printf("  retransmissions       %8llu\n",
              static_cast<unsigned long long>(r.retransmissions));
  std::printf("  duplicates at rcv     %8llu\n",
              static_cast<unsigned long long>(r.duplicates));
  std::printf("  reordered arrivals    %8.1f%%\n",
              100.0 * r.monitor.reordered_fraction());
  std::printf("  mean reorder extent   %8.2f segments\n",
              r.monitor.mean_extent());
  std::printf("  max resequencing buf  %8zu segments\n",
              r.monitor.max_buffer_occupancy());
}

}  // namespace

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 0.3;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 30.0;
  std::printf("strict-priority router, P(high-priority mark) = %.2f, %g s\n",
              p, seconds);
  report("tcp-pr", run(harness::TcpVariant::kTcpPr, p, seconds));
  report("tcp-sack", run(harness::TcpVariant::kSack, p, seconds));
  std::printf(
      "\nTCP-PR should show zero retransmissions and full goodput under\n"
      "the same reordering that makes TCP-SACK retransmit spuriously.\n");
  return 0;
}
